// Package harness runs the paper's experiments: the Table 1 feature ladder,
// the Table 2 level-of-detail measurements, and the Figure 5 optimization
// sweep, over the synthetic SPEC2000 suite. Each public function returns
// structured rows (for tests and benchmarks) and can render itself in the
// layout of the paper (for cmd/drbench).
package harness

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"repro/internal/clients/ctrace"
	"repro/internal/clients/ibdispatch"
	"repro/internal/clients/inc2add"
	"repro/internal/clients/rlr"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// runLimit bounds any single simulated run.
const runLimit = 600_000_000

// NativeResult is a baseline run of a benchmark.
type NativeResult struct {
	Ticks  machine.Ticks
	Output []byte
	Stats  machine.Stats
}

// nativeEntry is one benchmark's slot in the native-baseline cache. The
// sync.Once makes the cache safe for concurrent RunNative/RunConfig calls:
// the first caller performs the run, every other caller blocks on the Once
// until the result (or error) is ready, and no benchmark runs twice.
type nativeEntry struct {
	once sync.Once
	res  *NativeResult
	err  error
}

var (
	nativeMu    sync.Mutex
	nativeCache = map[string]*nativeEntry{}
)

// RunNative executes the benchmark directly on the machine (no runtime),
// caching the result. It is safe for concurrent use.
func RunNative(b *workload.Benchmark) *NativeResult {
	r, err := runNative(b)
	if err != nil {
		panic(err)
	}
	return r
}

func runNative(b *workload.Benchmark) (*NativeResult, error) {
	nativeMu.Lock()
	e, ok := nativeCache[b.Name]
	if !ok {
		e = &nativeEntry{}
		nativeCache[b.Name] = e
	}
	nativeMu.Unlock()
	e.once.Do(func() {
		m := machine.New(machine.PentiumIV())
		b.Image().Boot(m)
		if err := m.Run(runLimit); err != nil {
			e.err = fmt.Errorf("harness: native %s: %v", b.Name, err)
			return
		}
		e.res = &NativeResult{Ticks: m.Ticks, Output: m.Output, Stats: m.Stats}
	})
	return e.res, e.err
}

// ConfigResult is one benchmark run under the runtime.
type ConfigResult struct {
	Ticks      machine.Ticks
	Normalized float64 // ticks / native ticks: the paper's y-axis
	Output     []byte
	RIOStats   core.Stats
	Machine    machine.Stats
}

// RunConfig executes the benchmark under the runtime with the given options
// and clients, verifying transparency against the native run. It panics on
// any failure; the parallel harness uses RunConfigErr instead.
func RunConfig(b *workload.Benchmark, opts core.Options, clients ...core.Client) *ConfigResult {
	res, err := runConfig(b, opts, clients...)
	if err != nil {
		panic(err)
	}
	return res
}

// RunConfigErr is RunConfig with every failure — including panics from the
// runtime or a client — converted to an error, so one broken cell of a
// parallel sweep reports instead of killing the whole run.
func RunConfigErr(b *workload.Benchmark, opts core.Options, clients ...core.Client) (res *ConfigResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("harness: %s: panic: %v", b.Name, p)
		}
	}()
	return runConfig(b, opts, clients...)
}

func runConfig(b *workload.Benchmark, opts core.Options, clients ...core.Client) (*ConfigResult, error) {
	native, err := runNative(b)
	if err != nil {
		return nil, err
	}
	m := machine.New(machine.PentiumIV())
	r := core.New(m, b.Image(), opts, nil, clients...)
	if err := r.Run(runLimit); err != nil {
		return nil, fmt.Errorf("harness: %s under %+v: %v", b.Name, opts.Mode, err)
	}
	if !bytes.Equal(m.Output, native.Output) {
		return nil, fmt.Errorf("harness: %s: transparency violated: output %q != native %q",
			b.Name, m.Output, native.Output)
	}
	return &ConfigResult{
		Ticks:      m.Ticks,
		Normalized: float64(m.Ticks) / float64(native.Ticks),
		Output:     m.Output,
		RIOStats:   r.StatsSnapshot(),
		Machine:    m.Stats,
	}, nil
}

// OptConfig names one bar group of Figure 5.
type OptConfig int

// Figure 5 configurations, in the paper's order.
const (
	ConfigBase OptConfig = iota
	ConfigRLR
	ConfigInc2Add
	ConfigIBDispatch
	ConfigCTrace
	ConfigAll
	NumOptConfigs
)

var optConfigNames = [NumOptConfigs]string{
	"base", "rlr", "inc2add", "ibdispatch", "ctrace", "all",
}

func (c OptConfig) String() string { return optConfigNames[c] }

// ClientsFor builds fresh client instances for a Figure 5 configuration
// (clients hold per-run state and must never be shared between runs).
func ClientsFor(c OptConfig) []core.Client {
	switch c {
	case ConfigRLR:
		return []core.Client{rlr.New()}
	case ConfigInc2Add:
		return []core.Client{inc2add.New()}
	case ConfigIBDispatch:
		return []core.Client{ibdispatch.New()}
	case ConfigCTrace:
		return []core.Client{ctrace.New()}
	case ConfigAll:
		return []core.Client{rlr.New(), inc2add.New(), ibdispatch.New(), ctrace.New()}
	default:
		return nil
	}
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
