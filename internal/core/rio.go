package core

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/ia32"
	"repro/internal/image"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Stats counts runtime events. All fields are written with atomic adds and
// may be read directly once a run has finished; concurrent readers must use
// StatsSnapshot (see stats.go for the protocol).
type Stats struct {
	ContextSwitches  uint64
	BlocksBuilt      uint64
	TracesBuilt      uint64
	Links            uint64
	Unlinks          uint64
	IBLMisses        uint64
	CleanCalls       uint64
	Replacements     uint64
	FragmentsDeleted uint64
	CacheFlushes     uint64
	StaleFragments   uint64
	TraceHeadBumps   uint64
	EmulatedInstrs   uint64

	// Per-kind splits of FragmentsDeleted, for the conservation
	// invariant: BlocksBuilt == live BB fragments + FragmentsDeletedBB
	// (and likewise for traces) once deletion events have been delivered.
	FragmentsDeletedBB    uint64
	FragmentsDeletedTrace uint64

	// Bounded-cache management (Section 6): fragments evicted under
	// capacity pressure, evicted fragments later rebuilt (the signal
	// driving adaptive sizing), and adaptive/forced capacity grows.
	Evictions     uint64
	Regenerations uint64
	CacheResizes  uint64

	// Indirect-branch lookup hashtable behaviour. IBLCollisions counts
	// inserts displaced from their home slot (open addressing) or
	// clobbering a prior entry (direct-mapped); IBLMaxProbe is the longest
	// insert probe distance seen; IBLReplaced counts entries displaced
	// because a fixed-size table hit its load ceiling; IBLResizes counts
	// adaptive table doublings.
	IBLCollisions uint64
	IBLMaxProbe   uint64
	IBLReplaced   uint64
	IBLResizes    uint64

	// Flags-liveness elision: fragments emitted with a flag-save-free IBL
	// target prefix, and trace inline checks whose hit-path popfd was
	// elided.
	FlagsElisions      uint64
	InlineChecksElided uint64

	// Fault transparency (Section 3.3.4): faults whose cache context was
	// rewritten to native application form, and threads that fell back to
	// native execution after an internal runtime failure.
	FaultsTranslated uint64
	Detaches         uint64

	// Robustness ladder (see recover.go). Recoveries counts internal
	// failures rolled back transactionally with a clean post-rollback
	// invariant audit; RecoveryAuditFailures counts rollbacks the audit
	// rejected (each also detaches the thread). Quarantined counts tags
	// permanently barred from the cache, NativeWindows the bounded native
	// cool-down windows executed, Reattaches the threads that returned to
	// full service after a clean cool-down, and DegradeLevel the high-water
	// health level any thread reached (statMax, not a sum).
	Recoveries            uint64
	RecoveryAuditFailures uint64
	Quarantined           uint64
	NativeWindows         uint64
	Reattaches            uint64
	DegradeLevel          uint64

	// Anomalies counts pathology-watchdog detections (Options.Watchdog).
	Anomalies uint64

	// Live-fragment byte gauges. The authoritative per-thread gauges live
	// on each Context; StatsSnapshot aggregates them across threads at
	// snapshot time. These fields are only populated in snapshots — in
	// the RIO's own Stats they stay zero.
	BBCacheLiveBytes    uint64
	TraceCacheLiveBytes uint64
}

// RIO is one instance of the runtime attached to a machine and program.
type RIO struct {
	M       *machine.Machine
	Opts    Options
	Clients []Client

	Img *image.Image

	Stats Stats

	// Out receives client dr_printf output (transparent I/O: the runtime
	// never touches the application's output stream).
	Out io.Writer

	// contexts maps thread ids to runtime contexts; ctxMu guards the map
	// against concurrent StatsSnapshot/profile readers while the running
	// machine spawns threads.
	contexts map[int]*Context
	ctxMu    sync.RWMutex

	// tracer is the runtime event ring (never nil; disabled at size 0).
	tracer *obs.Tracer

	// Live telemetry (see telemetry.go). hists is always on — observation
	// is allocation-free atomics and never charges simulated time. spans
	// is the Chrome trace-event exporter (nil when off); ownSpans marks a
	// writer this runtime created from Options.TraceEventWriter and must
	// close at exit. wd is the pathology watchdog (nil when off), pumped
	// from the dispatcher every wd.Interval() ticks; wdNext is the next
	// pump deadline.
	hists    obs.Histograms
	spans    *obs.TraceWriter
	spanPid  int
	ownSpans bool
	wd       *obs.Watchdog
	wdNext   uint64

	linkstubs []*Exit

	startTrap     machine.Addr
	exitTrap      machine.Addr
	iblMissTrap   machine.Addr
	cleanCallTrap machine.Addr
	windowTrap    machine.Addr

	// Transactional-recovery state (see recover.go): the undo/repair log
	// of in-flight cache mutations, the dispatch/recovery nesting flags
	// that gate chaos injection, and a suppression counter for wholesale
	// operations that have no incremental repair (flushForReuse).
	txnLog        []func()
	inDispatch    int
	inRecovery    bool
	chaosSuppress int

	cleanCalls []func(*Context)

	// sharedFrags backs every context's fragment map in the SharedCache
	// ablation.
	sharedFrags map[machine.Addr]*Fragment

	// exiting guards against double exit-event delivery.
	exited bool

	// heapNext is the global transparent-allocation bump pointer.
	heapNext machine.Addr
}

// New attaches a runtime to a machine that will run img under opts with the
// given clients. The machine must be freshly created; New installs traps,
// loads the image, creates the initial thread context and points the thread
// at the dispatcher.
func New(m *machine.Machine, img *image.Image, opts Options, out io.Writer, clients ...Client) *RIO {
	if opts.TraceThreshold <= 0 {
		opts.TraceThreshold = 50
	}
	if opts.MaxTraceBlocks <= 0 {
		opts.MaxTraceBlocks = 32
	}
	if opts.IBLTableBits == 0 {
		opts.IBLTableBits = 8
	}
	if opts.IBLTableBits > maxIBLTableBits {
		opts.IBLTableBits = maxIBLTableBits
	}
	if opts.RegenThreshold <= 0 {
		opts.RegenThreshold = 0.5
	}
	if opts.ResizeEpoch <= 0 {
		opts.ResizeEpoch = 32
	}
	if opts.NativeWindow == 0 {
		opts.NativeWindow = 2000
	}
	if opts.RecoveryRetryBudget <= 0 {
		opts.RecoveryRetryBudget = 3
	}
	if opts.RecoveryBackoff == 0 {
		opts.RecoveryBackoff = 4
	}
	if opts.QuarantineThreshold <= 0 {
		opts.QuarantineThreshold = 3
	}
	if opts.ReattachCooldown == 0 {
		opts.ReattachCooldown = 16
	}
	r := &RIO{
		M:        m,
		Opts:     opts,
		Clients:  clients,
		Img:      img,
		Out:      out,
		contexts: map[int]*Context{},
		tracer:   obs.NewTracer(opts.EventRing),
	}
	if opts.SharedCache {
		r.sharedFrags = map[machine.Addr]*Fragment{}
	}
	r.initSpans()
	if opts.Watchdog {
		r.wd = obs.NewWatchdog(opts.WatchdogConfig)
		r.wdNext = r.wd.Interval()
	}
	if opts.Profile {
		// Must happen before any ticks accrue so the phase breakdown sums
		// exactly to machine.Ticks (the conservation invariant).
		m.EnablePhaseAccounting()
	}

	img.LoadInto(m.Mem)

	r.startTrap = m.AllocTrap(r.onStart)
	r.exitTrap = m.AllocTrap(r.onExit)
	r.iblMissTrap = m.AllocTrap(r.onIBLMiss)
	r.cleanCallTrap = m.AllocTrap(r.onCleanCall)
	r.windowTrap = m.AllocTrap(r.onWindowEnd)

	// Native cool-down windows (degradation ladder) are bounded by an
	// instruction watch; expiry hands the thread back to the dispatcher.
	m.SetWatchHook(r.onWatchExpire)

	// Initial thread.
	t0 := m.Threads[0]
	t0.CPU.SetReg(ia32.ESP, img.StackTop)
	r.setupThread(t0, img.Entry)

	// Threads spawned by the program are routed through the dispatcher
	// too, each with its own context (thread-private caches).
	m.SetSpawnHook(func(t *machine.Thread) {
		r.setupThread(t, t.CPU.EIP)
	})

	// Signals are intercepted: delivery is deferred to the next dispatcher
	// entry so it always happens at a safe point with a clean application
	// context (the queued handler runs with the application's next tag as
	// its interrupted PC).
	m.SetSignalInterceptor(r.interceptSignal)

	// Synchronous faults get their context translated back to native form
	// before they become observable, and registered handlers are re-routed
	// through the dispatcher so they too run under the cache.
	m.SetFaultTranslator(r.translateFault)
	m.SetFaultInterceptor(r.interceptFaultDelivery)

	for _, cl := range r.Clients {
		if h, ok := cl.(InitHook); ok {
			h.Init(r)
		}
	}
	ctx := r.contexts[t0.ID]
	for _, cl := range r.Clients {
		if h, ok := cl.(ThreadInitHook); ok {
			h.ThreadInit(ctx)
		}
	}
	return r
}

// setupThread creates the context for a machine thread and points the
// thread at the dispatcher with startTag as its first target.
func (r *RIO) setupThread(t *machine.Thread, startTag machine.Addr) {
	ctx := &Context{
		rio:         r,
		thread:      t,
		headCounter: map[machine.Addr]int{},
		isHead:      map[machine.Addr]bool{},
	}
	slot := machine.Addr(t.ID)
	if r.Opts.SharedCache {
		slot = 0
		ctx.frags = r.sharedFrags
	} else {
		ctx.frags = map[machine.Addr]*Fragment{}
	}
	size := cacheStride
	if r.Opts.CacheSize > 0 && machine.Addr(r.Opts.CacheSize) < cacheStride {
		size = machine.Addr(r.Opts.CacheSize)
	}
	ctx.tls = tlsBase + machine.Addr(t.ID)*tlsStride // TLS is always private
	ctx.bb = newRegion(KindBasicBlock, bbCacheBase+slot*cacheStride, size, r.Opts.BBCacheSize, r.Opts.SharedCache)
	ctx.trace = newRegion(KindTrace, traceCacheBase+slot*cacheStride, size, r.Opts.TraceCacheSize, r.Opts.SharedCache)
	ctx.tableBase = tlsBase + slot*tlsStride + offIBLTable
	ctx.tableBits = r.Opts.IBLTableBits
	ctx.tableMask = 1<<ctx.tableBits - 1

	if r.Opts.Mode == ModeCache && r.Opts.LinkIndirect {
		r.emitIBLRoutines(ctx)
	}

	r.ctxMu.Lock()
	r.contexts[t.ID] = ctx
	r.ctxMu.Unlock()
	t.Local = ctx
	r.spanThreadMeta(t.ID)

	if r.Opts.Mode == ModeEmulate {
		// Pure emulation: run the application code where it lies, with
		// a per-instruction interpretation charge. (The paper's Table 1
		// first row.)
		t.CPU.EIP = startTag
		return
	}
	// Stash the start tag; the start trap dispatches to it.
	ctx.lastExit = nil
	ctx.startTag = startTag
	t.CPU.EIP = r.startTrap

	if t.ID > 0 {
		for _, cl := range r.Clients {
			if h, ok := cl.(ThreadInitHook); ok {
				h.ThreadInit(ctx)
			}
		}
	}
}

// usesIBLPrefix reports whether fragments carry an indirect-branch target
// prefix and the lookup hashtable is the open-address organization (the two
// are coupled: the hashtable's dest field points at the prefix, and the
// lookup routine's hit path relies on the prefix to restore ECX and the
// flags). False under SharedCache — a prefix restores ECX from its own
// emitter's TLS spill slot, which is the wrong slot when the exit that
// spilled was emitted by another thread — and under the IBLDirectMapped
// ablation, both of which keep the legacy routine shape that restores the
// application context inside the routine itself.
func (r *RIO) usesIBLPrefix() bool {
	return r.Opts.Mode == ModeCache && r.Opts.LinkIndirect &&
		!r.Opts.SharedCache && !r.Opts.IBLDirectMapped
}

// ContextOf returns the runtime context of a machine thread, or nil if the
// thread is not managed by this runtime.
func (r *RIO) ContextOf(t *machine.Thread) *Context {
	r.ctxMu.RLock()
	defer r.ctxMu.RUnlock()
	return r.contexts[t.ID]
}

// ctxOf returns the runtime context of a machine thread.
func (r *RIO) ctxOf(t *machine.Thread) *Context {
	ctx, ok := t.Local.(*Context)
	if !ok {
		panic(fmt.Sprintf("core: thread %d has no runtime context", t.ID))
	}
	return ctx
}

// Run executes the program to completion (or the instruction limit) and
// fires thread-exit and exit events.
func (r *RIO) Run(limit uint64) error {
	if r.Opts.Mode == ModeEmulate {
		r.M.PerInstrOverhead = r.Opts.Cost.EmulateDispatch
	}
	err := r.M.Run(limit)
	r.fireExitEvents()
	return err
}

func (r *RIO) fireExitEvents() {
	if r.exited {
		return
	}
	r.exited = true
	for _, t := range r.M.Threads {
		ctx := r.ContextOf(t)
		if ctx == nil {
			continue
		}
		// A thread that halts right after an eviction never reaches another
		// dispatch safe point; its deferred events are still owed. The thread
		// is stopped, so delivery is safe here.
		r.deliverDeleted(ctx)
		// Likewise any signals still queued for the dispatcher's safe point
		// can never be delivered now: account for them so none is lost
		// silently.
		if n := len(ctx.pendingSignals); n > 0 {
			statAdd(&r.M.Stats.SignalsDropped, uint64(n))
			ctx.pendingSignals = nil
		}
		for _, cl := range r.Clients {
			if h, ok := cl.(ThreadExitHook); ok {
				h.ThreadExit(ctx)
			}
		}
	}
	for _, cl := range r.Clients {
		if h, ok := cl.(ExitHook); ok {
			h.Exit(r)
		}
	}
	r.closeSpans()
}

// Histograms returns the runtime's distribution metrics. The histograms are
// always recording — reads are safe at any time, including concurrently with
// a running machine.
func (r *RIO) Histograms() *obs.Histograms { return &r.hists }

// Printf writes transparent client output (the paper's dr_printf): it goes
// to the runtime's own stream, never the application's.
func (r *RIO) Printf(format string, args ...any) {
	if r.Out != nil {
		fmt.Fprintf(r.Out, format, args...)
	}
}

// ProcessorFamily identifies the underlying processor for
// architecture-specific optimizations (the paper's proc_get_family).
func (r *RIO) ProcessorFamily() machine.Family { return r.M.Profile.Family }

// globalHeapBase is where AllocGlobal carves transparent runtime memory.
const globalHeapBase machine.Addr = 0xE0000000

// AllocGlobal reserves n bytes of global runtime memory that does not
// interfere with the application (the paper's transparent global
// allocation: a client that used the application's allocator would risk
// corrupting it) and returns the simulated address.
func (r *RIO) AllocGlobal(n int) machine.Addr {
	if r.heapNext == 0 {
		r.heapNext = globalHeapBase
	}
	a := r.heapNext
	r.heapNext += machine.Addr((n + 7) &^ 7)
	if r.heapNext > globalHeapBase+0x01000000 {
		panic("core: global runtime heap exhausted")
	}
	return a
}

// RegisterCleanCall registers fn for insertion into cache code; the
// returned id is used by InsertCleanCall. Callbacks run with the machine
// paused at the call site; they may inspect and modify machine state and
// use the adaptive replacement interface.
func (r *RIO) RegisterCleanCall(fn func(*Context)) uint32 {
	r.cleanCalls = append(r.cleanCalls, fn)
	return uint32(len(r.cleanCalls) - 1)
}

// CleanCallTrap returns the trap address clean calls are routed through.
func (r *RIO) CleanCallTrap() machine.Addr { return r.cleanCallTrap }

// interceptSignal queues the handler to be dispatched at the next safe
// point: the thread's next entry to the dispatcher.
func (r *RIO) interceptSignal(t *machine.Thread, handler machine.Addr) bool {
	if r.Opts.Mode == ModeEmulate {
		return false // default delivery is fine under emulation
	}
	ctx := r.ctxOf(t)
	if ctx.detached {
		return false // detached threads use the machine's native delivery
	}
	ctx.pendingSignals = append(ctx.pendingSignals, handler)
	return true
}
