package machine

import "repro/internal/obs"

// Phase accounting: attributing every simulated tick to the execution phase
// it was spent in (the paper's Section 4 overhead breakdown), plus the
// machine-side half of per-fragment profiling.
//
// The mechanism has two halves. Modeled runtime work arrives through
// Charge, which the runtime brackets with SetChargePhase around each
// mechanism (dispatch, block construction, eviction, ...). Executed
// instructions are attributed by *where they ran*: the runtime classifies
// its emitted code regions with MapCodeRange (fragment bodies, exit stubs,
// the indirect-branch lookup routines) at 16-byte granularity — fragments
// are 16-aligned — and the profiled step looks the executing PC up in that
// map. The per-instruction tick delta, minus any in-window Charges (which
// carry their own phase), goes to the region's phase; unmapped PCs are
// native application code. Conservation — the phase ticks summing exactly
// to Ticks — holds by construction: every tick mutation is either a Charge
// or inside an instruction window.
//
// The same classification drives per-fragment counters: region entries
// carry a fragment id, and transitions between regions count fragment
// entries, exit-stub traversals, and lookup-routine hits without any
// instrumentation code in the cache (so profiling changes no emitted bytes,
// no digests, and no tick totals).

const (
	// granuleShift is the classification granularity: 16 bytes, the cache
	// allocator's fragment alignment.
	granuleShift = 4

	// Region-entry packing: fid<<9 | stubBit<<8 | phase.
	metaPhaseMask = 0xFF
	metaStubBit   = 0x100
	metaFidShift  = 9

	// fragSuppress marks "just trapped": the next cache instruction must
	// not count as a machine-observed fragment entry (the runtime counts
	// dispatcher-mediated entries itself, and a clean call's return into
	// the middle of a fragment is not an entry at all).
	fragSuppress = ^uint32(0)
)

// metaPage classifies one 64 KiB page of runtime code at 16-byte granules.
type metaPage [PageSize >> granuleShift]uint32

// phaseState is the machine's phase-accounting and fragment-profiling
// state, embedded in Machine and inert until EnablePhaseAccounting.
type phaseState struct {
	phaseOn    bool
	phaseTicks obs.PhaseTicks

	// chargePhase is the phase Charges are attributed to; the runtime
	// brackets its mechanisms with SetChargePhase.
	chargePhase obs.Phase
	// charged accumulates Charge ticks during the current instruction
	// window so they are not double-counted by the window delta.
	charged Ticks

	// codeMeta maps runtime-code pages to their granule classifications;
	// codeMetaMin fast-rejects application PCs below any mapped region.
	codeMeta    map[Addr]*metaPage
	codeMetaMin Addr
	metaPageIdx Addr // 1-entry lookup cache
	metaPage    *metaPage
	metaValid   bool

	// fragCounts is indexed by fragment id (AllocFragID; 0 is unused).
	fragCounts []obs.FragCounts

	// Transition-detection state: the region the previous instruction
	// executed in.
	curFrag       uint32
	curStub       bool
	lastExecPhase obs.Phase
}

// EnablePhaseAccounting turns on per-tick phase attribution and fragment
// profiling. It must be called before any ticks accrue for the conservation
// invariant (phase ticks sum == Ticks) to hold.
func (m *Machine) EnablePhaseAccounting() {
	m.phaseOn = true
	m.chargePhase = obs.PhaseDispatch
	m.lastExecPhase = obs.PhaseContextSwitch
	m.curFrag = fragSuppress
	if m.codeMeta == nil {
		m.codeMeta = map[Addr]*metaPage{}
		m.codeMetaMin = ^Addr(0)
		m.fragCounts = make([]obs.FragCounts, 1) // id 0 unused
	}
}

// PhaseAccounting reports whether phase attribution is on.
func (m *Machine) PhaseAccounting() bool { return m.phaseOn }

// PhaseTicks returns the per-phase tick breakdown.
func (m *Machine) PhaseTicks() obs.PhaseTicks { return m.phaseTicks }

// SetChargePhase sets the phase subsequent Charge calls are attributed to
// and returns the previous one, for bracket-style restore. Cheap and valid
// even when accounting is off.
func (m *Machine) SetChargePhase(p obs.Phase) obs.Phase {
	prev := m.chargePhase
	m.chargePhase = p
	return prev
}

// AllocFragID allocates a stable fragment-profile id. Ids survive eviction
// and rebuild of the fragment they profile: the runtime allocates one per
// fragment identity, not per emission, so the counters accumulate across
// the fragment's whole lifetime.
func (m *Machine) AllocFragID() uint32 {
	if !m.phaseOn {
		return 0
	}
	m.fragCounts = append(m.fragCounts, obs.FragCounts{})
	id := uint32(len(m.fragCounts) - 1)
	if id >= fragSuppress>>metaFidShift {
		panic("machine: fragment profile ids exhausted")
	}
	return id
}

// FragCounts returns the machine-side counters of a fragment id.
func (m *Machine) FragCounts(fid uint32) obs.FragCounts {
	if !m.phaseOn || fid == 0 || int(fid) >= len(m.fragCounts) {
		return obs.FragCounts{}
	}
	return m.fragCounts[fid]
}

// FragEntered counts one dispatcher-mediated entry into a fragment (the
// runtime calls it when it re-enters the cache; link- and IBL-mediated
// entries are observed by the machine itself as region transitions).
func (m *Machine) FragEntered(fid uint32) {
	if m.phaseOn && fid != 0 && int(fid) < len(m.fragCounts) {
		m.fragCounts[fid].Execs++
	}
}

// MapCodeRange classifies the granules overlapping [start, end) as runtime
// code of the given phase, owned by fragment fid (0 = none), with stub
// marking the fragment's exit-stub area. Later mappings overwrite earlier
// ones, which is exactly right for cache memory reuse.
func (m *Machine) MapCodeRange(start, end Addr, p obs.Phase, fid uint32, stub bool) {
	if !m.phaseOn || end <= start {
		return
	}
	if start < m.codeMetaMin {
		m.codeMetaMin = start
	}
	entry := uint32(p) | fid<<metaFidShift
	if stub {
		entry |= metaStubBit
	}
	for g := start >> granuleShift; g <= (end-1)>>granuleShift; g++ {
		pg := g >> (pageShift - granuleShift)
		page := m.codeMeta[pg]
		if page == nil {
			page = &metaPage{}
			m.codeMeta[pg] = page
			m.metaValid = false // the lookup cache may hold this page's nil
		}
		page[g&(PageSize>>granuleShift-1)] = entry
	}
}

// classifyExec returns the phase, fragment id and stub flag of the code at
// pc. Unmapped addresses are native application code.
func (m *Machine) classifyExec(pc Addr) (obs.Phase, uint32, bool) {
	if pc < m.codeMetaMin {
		return obs.PhaseAppNative, 0, false
	}
	pg := pc >> pageShift
	if !m.metaValid || pg != m.metaPageIdx {
		m.metaPage, m.metaPageIdx, m.metaValid = m.codeMeta[pg], pg, true
	}
	if m.metaPage == nil {
		return obs.PhaseAppNative, 0, false
	}
	e := m.metaPage[pc&(PageSize-1)>>granuleShift]
	if e == 0 {
		return obs.PhaseAppNative, 0, false
	}
	return obs.Phase(e & metaPhaseMask), e >> metaFidShift, e&metaStubBit != 0
}

// noteTrap records a transfer out of simulated execution into a runtime
// trap handler: the transition tracker is reset so the next cache
// instruction is not miscounted as a link- or IBL-mediated fragment entry.
func (m *Machine) noteTrap() {
	m.curFrag = fragSuppress
	m.curStub = false
	m.lastExecPhase = obs.PhaseContextSwitch
}

// stepProfiled is Step's tail with phase attribution: it executes the
// decoded instruction and attributes the window's tick delta — minus
// in-window Charges, which carry their own phase — to the phase of the
// executing code region, updating the owning fragment's counters.
func (m *Machine) stepProfiled(t *Thread, ci *cachedInst, pc Addr) error {
	m.Stats.Instructions++
	t.Instret++
	before := m.Ticks
	m.charged = 0
	m.Ticks += ci.cost + m.PerInstrOverhead

	var err error
	if m.Mem.protCount != 0 {
		err = m.stepGuarded(t, ci)
	} else if e := ci.fn(m, t, ci); e != nil {
		if f, ok := e.(*Fault); ok {
			err = m.raiseFault(t, f)
		} else {
			err = e
		}
	}

	delta := m.Ticks - before - m.charged
	ph, fid, stub := m.classifyExec(pc)
	// The per-instruction interpretation overhead (ModeEmulate) is
	// dispatcher work, not application work.
	if over := m.PerInstrOverhead; over > 0 && over <= delta {
		m.phaseTicks[obs.PhaseDispatch] += uint64(over)
		delta -= over
	}
	m.phaseTicks[ph] += uint64(delta)

	if fid != 0 && fid != fragSuppress && int(fid) < len(m.fragCounts) {
		fc := &m.fragCounts[fid]
		fc.Ticks += uint64(delta)
		if stub {
			if m.curFrag != fid || !m.curStub {
				fc.StubWalks++
			}
		} else if m.curFrag != fid || m.curStub {
			if m.curFrag != fragSuppress {
				fc.Execs++
				if m.lastExecPhase == obs.PhaseIBLLookup {
					fc.IBLHits++
				}
			}
		}
	}
	m.curFrag, m.curStub, m.lastExecPhase = fid, stub, ph
	return err
}
