package machine_test

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/ia32"
	"repro/internal/image"
	"repro/internal/machine"
)

// refFlags is an independent reference model of the arithmetic flags,
// computed with math/bits rather than the sign-bit algebra the machine
// uses, so shared bugs are unlikely.
type refFlags struct {
	cf, pf, af, zf, sf, of bool
	result                 uint32
}

func refParity(v uint32) bool { return bits.OnesCount8(uint8(v))%2 == 0 }

func refAdd(a, b uint32, carry uint32) refFlags {
	wide := uint64(a) + uint64(b) + uint64(carry)
	r := uint32(wide)
	sa, sb, sr := int32(a) < 0, int32(b) < 0, int32(r) < 0
	return refFlags{
		cf:     wide>>32 != 0,
		pf:     refParity(r),
		af:     (a&0xf)+(b&0xf)+carry > 0xf,
		zf:     r == 0,
		sf:     sr,
		of:     sa == sb && sr != sa,
		result: r,
	}
}

func refSub(a, b uint32, borrow uint32) refFlags {
	wide := int64(uint64(a)) - int64(uint64(b)) - int64(borrow)
	r := uint32(wide)
	sa, sb, sr := int32(a) < 0, int32(b) < 0, int32(r) < 0
	return refFlags{
		cf:     wide < 0,
		pf:     refParity(r),
		af:     int32(a&0xf)-int32(b&0xf)-int32(borrow) < 0,
		zf:     r == 0,
		sf:     sr,
		of:     sa != sb && sr == sb,
		result: r,
	}
}

func refLogic(r uint32) refFlags {
	return refFlags{pf: refParity(r), zf: r == 0, sf: int32(r) < 0, result: r}
}

func (f refFlags) eflags() uint32 {
	var e uint32
	if f.cf {
		e |= ia32.FlagCF
	}
	if f.pf {
		e |= ia32.FlagPF
	}
	if f.af {
		e |= ia32.FlagAF
	}
	if f.zf {
		e |= ia32.FlagZF
	}
	if f.sf {
		e |= ia32.FlagSF
	}
	if f.of {
		e |= ia32.FlagOF
	}
	return e
}

// flagRig executes single instructions on a reusable machine.
type flagRig struct {
	m  *machine.Machine
	th *machine.Thread
}

const rigPC = 0x1000

func newRig() *flagRig {
	m := machine.New(machine.PentiumIV())
	return &flagRig{m: m, th: m.Threads[0]}
}

// exec runs one instruction with the given initial EAX/EBX and eflags,
// returning the final EAX and flags.
func (rg *flagRig) exec(t *testing.T, in ia32.Inst, eax, ebx, eflagsIn uint32) (uint32, uint32) {
	t.Helper()
	buf, err := ia32.Encode(&in, rigPC, nil)
	if err != nil {
		t.Fatalf("encode %s: %v", &in, err)
	}
	rg.m.Mem.WriteBytes(rigPC, buf)
	rg.th.CPU.EIP = rigPC
	rg.th.CPU.SetReg(ia32.EAX, eax)
	rg.th.CPU.SetReg(ia32.EBX, ebx)
	rg.th.CPU.Eflags = eflagsIn
	rg.th.Halted = false
	if err := rg.m.Step(rg.th); err != nil {
		t.Fatalf("step %s: %v", &in, err)
	}
	return rg.th.CPU.Reg(ia32.EAX), rg.th.CPU.Eflags & ia32.FlagsAll
}

func binInst(op ia32.Opcode) ia32.Inst {
	dst, src := ia32.RegOp(ia32.EAX), ia32.RegOp(ia32.EBX)
	return ia32.Inst{Op: op, Dsts: []ia32.Operand{dst}, Srcs: []ia32.Operand{src, dst}}
}

// TestFlagSemanticsAgainstReference drives random operand values through
// every flag-setting arithmetic instruction and compares both the result
// and all six flags against the reference model.
func TestFlagSemanticsAgainstReference(t *testing.T) {
	rg := newRig()
	rng := rand.New(rand.NewSource(42))
	interesting := []uint32{0, 1, 2, 0x7fffffff, 0x80000000, 0xffffffff, 0xfffffffe, 0x80, 0x7f, 0x8000}
	val := func() uint32 {
		if rng.Intn(3) == 0 {
			return interesting[rng.Intn(len(interesting))]
		}
		return rng.Uint32()
	}

	for i := 0; i < 20000; i++ {
		a, b := val(), val()
		cfIn := uint32(rng.Intn(2))
		eflagsIn := cfIn * ia32.FlagCF

		var in ia32.Inst
		var want refFlags
		switch rng.Intn(10) {
		case 0:
			in, want = binInst(ia32.OpAdd), refAdd(a, b, 0)
		case 1:
			in, want = binInst(ia32.OpAdc), refAdd(a, b, cfIn)
		case 2:
			in, want = binInst(ia32.OpSub), refSub(a, b, 0)
		case 3:
			in, want = binInst(ia32.OpSbb), refSub(a, b, cfIn)
		case 4:
			in = ia32.Inst{Op: ia32.OpCmp, Srcs: []ia32.Operand{ia32.RegOp(ia32.EAX), ia32.RegOp(ia32.EBX)}}
			want = refSub(a, b, 0)
			want.result = a // cmp leaves eax alone
		case 5:
			in, want = binInst(ia32.OpAnd), refLogic(a&b)
		case 6:
			in, want = binInst(ia32.OpOr), refLogic(a|b)
		case 7:
			in, want = binInst(ia32.OpXor), refLogic(a^b)
		case 8:
			in = ia32.Inst{Op: ia32.OpTest, Srcs: []ia32.Operand{ia32.RegOp(ia32.EAX), ia32.RegOp(ia32.EBX)}}
			want = refLogic(a & b)
			want.result = a
		case 9:
			dst := ia32.RegOp(ia32.EAX)
			in = ia32.Inst{Op: ia32.OpNeg, Dsts: []ia32.Operand{dst}, Srcs: []ia32.Operand{dst}}
			want = refSub(0, a, 0)
		}

		gotEAX, gotFlags := rg.exec(t, in, a, b, eflagsIn)
		if gotEAX != want.result {
			t.Fatalf("%s a=%#x b=%#x cf=%d: result %#x, want %#x",
				in.Op, a, b, cfIn, gotEAX, want.result)
		}
		if gotFlags != want.eflags() {
			t.Fatalf("%s a=%#x b=%#x cf=%d: flags %#x, want %#x",
				in.Op, a, b, cfIn, gotFlags, want.eflags())
		}
	}
}

// TestIncDecFlagReference checks inc/dec against the reference: all flags
// of the matching add/sub except CF, which is preserved from before.
func TestIncDecFlagReference(t *testing.T) {
	rg := newRig()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := rng.Uint32()
		cfIn := uint32(rng.Intn(2)) * ia32.FlagCF
		dst := ia32.RegOp(ia32.EAX)
		var in ia32.Inst
		var want refFlags
		if rng.Intn(2) == 0 {
			in = ia32.Inst{Op: ia32.OpInc, Dsts: []ia32.Operand{dst}, Srcs: []ia32.Operand{dst}}
			want = refAdd(a, 1, 0)
		} else {
			in = ia32.Inst{Op: ia32.OpDec, Dsts: []ia32.Operand{dst}, Srcs: []ia32.Operand{dst}}
			want = refSub(a, 1, 0)
		}
		gotEAX, gotFlags := rg.exec(t, in, a, 0, cfIn)
		if gotEAX != want.result {
			t.Fatalf("%s %#x: result %#x want %#x", in.Op, a, gotEAX, want.result)
		}
		wantFlags := want.eflags()&^ia32.FlagCF | cfIn
		if gotFlags != wantFlags {
			t.Fatalf("%s %#x cfIn=%x: flags %#x want %#x", in.Op, a, cfIn, gotFlags, wantFlags)
		}
	}
}

// TestShiftFlagReference checks the shift family's results and CF against
// a bit-twiddling reference.
func TestShiftFlagReference(t *testing.T) {
	rg := newRig()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8000; i++ {
		a := rng.Uint32()
		amt := uint32(rng.Intn(32)) // 0..31
		dst := ia32.RegOp(ia32.EAX)
		mk := func(op ia32.Opcode) ia32.Inst {
			return ia32.Inst{Op: op, Dsts: []ia32.Operand{dst},
				Srcs: []ia32.Operand{ia32.ImmOp(int64(amt), 1), dst}}
		}
		var in ia32.Inst
		var want uint32
		var wantCF bool
		switch rng.Intn(3) {
		case 0:
			in, want = mk(ia32.OpShl), a<<amt
			if amt > 0 {
				wantCF = a&(1<<(32-amt)) != 0
			}
		case 1:
			in, want = mk(ia32.OpShr), a>>amt
			if amt > 0 {
				wantCF = a&(1<<(amt-1)) != 0
			}
		case 2:
			in, want = mk(ia32.OpSar), uint32(int32(a)>>amt)
			if amt > 0 {
				wantCF = int32(a)>>(amt-1)&1 != 0
			}
		}
		gotEAX, gotFlags := rg.exec(t, in, a, 0, 0)
		if gotEAX != want {
			t.Fatalf("%s %#x by %d: result %#x want %#x", in.Op, a, amt, gotEAX, want)
		}
		if amt == 0 {
			continue // flags unchanged; input flags were 0
		}
		if gotCF := gotFlags&ia32.FlagCF != 0; gotCF != wantCF {
			t.Fatalf("%s %#x by %d: CF %v want %v", in.Op, a, amt, gotCF, wantCF)
		}
		if gotZF := gotFlags&ia32.FlagZF != 0; gotZF != (want == 0) {
			t.Fatalf("%s %#x by %d: ZF wrong", in.Op, a, amt)
		}
	}
}

// TestCondBranchesAgainstFlags checks every conditional against directly
// computed flag predicates by running jcc over random flag words.
func TestCondBranchesAgainstFlags(t *testing.T) {
	img := image.MustAssemble("t", `
main:
    hlt
target:
    hlt
`)
	m := machine.New(machine.PentiumIV())
	img.Boot(m)
	th := m.Threads[0]
	rng := rand.New(rand.NewSource(5))
	const pc = 0x3000
	target := uint32(0x4000)

	for i := 0; i < 4000; i++ {
		cc := uint8(rng.Intn(16))
		flags := uint32(0)
		for _, f := range []uint32{ia32.FlagCF, ia32.FlagPF, ia32.FlagZF, ia32.FlagSF, ia32.FlagOF} {
			if rng.Intn(2) == 1 {
				flags |= f
			}
		}
		in := ia32.Inst{Op: ia32.Jcc(cc), Srcs: []ia32.Operand{ia32.PCOp(target)}}
		buf := ia32.MustEncode(&in, pc, nil)
		m.Mem.WriteBytes(pc, buf)
		th.CPU.EIP = pc
		th.CPU.Eflags = flags
		th.Halted = false
		if err := m.Step(th); err != nil {
			t.Fatal(err)
		}

		cf := flags&ia32.FlagCF != 0
		pf := flags&ia32.FlagPF != 0
		zf := flags&ia32.FlagZF != 0
		sf := flags&ia32.FlagSF != 0
		of := flags&ia32.FlagOF != 0
		var taken bool
		switch cc >> 1 {
		case 0:
			taken = of
		case 1:
			taken = cf
		case 2:
			taken = zf
		case 3:
			taken = cf || zf
		case 4:
			taken = sf
		case 5:
			taken = pf
		case 6:
			taken = sf != of
		case 7:
			taken = zf || sf != of
		}
		if cc&1 == 1 {
			taken = !taken
		}
		wantEIP := pc + uint32(len(buf))
		if taken {
			wantEIP = target
		}
		if th.CPU.EIP != wantEIP {
			t.Fatalf("%s with flags %#x: EIP %#x, want %#x (taken=%v)",
				ia32.Jcc(cc), flags, th.CPU.EIP, wantEIP, taken)
		}
	}
}
